// Command sweep varies the Java thread count of the multithreaded
// benchmarks on the HT processor (Figure 12) and reports IPC and L1D
// behaviour at each point. Grid points are independent simulations and
// fan out across -j worker threads (default: all CPUs); output order is
// fixed regardless of -j.
//
// With -geos the sweep axis is the machine shape instead of the thread
// count: every benchmark (single- and multithreaded) runs on each
// CORESxCONTEXTS geometry — the paper's HT processor is 1x2, a wider
// SMT core 1x4, a dual-core without SMT 2x1 — with multithreaded
// programs seating one software thread per hardware context.
//
// With -policies the sweep compares seating policies: PseudoJBB-heavy
// server mixes (-mixes, total software threads per mix) run under each
// policy on each machine shape, reporting aggregate IPC per policy and
// the best-vs-worst gap — the symbiotic-scheduling headline table.
//
// The sweep runs under the campaign resilience block: cells bounded by
// -deadline/-cycle-budget print as FAILED rows instead of aborting the
// grid, and -journal/-resume checkpoint long sweeps.
//
//	sweep
//	sweep -bench MolDyn -threads 1,2,4,8,16 -scale small -j 4
//	sweep -benches SyncLock,SyncCAS,MolDyn -threads 2,4
//	sweep -benches SyncQueue -geos 1x2,2x2
//	sweep -geos 1x1,1x2,2x1,2x2,4x4
//	sweep -policies all -mixes 32,128 -geos 1x2,2x2,4x4
//	sweep -trace t.json -metrics m.json
//	sweep -journal /tmp/sweep -deadline 5m
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"javasmt/internal/bench"
	"javasmt/internal/cli"
	"javasmt/internal/counters"
	"javasmt/internal/harness"
	"javasmt/internal/simos"
)

func main() {
	var (
		name     = flag.String("bench", "", "single benchmark (default: all multithreaded)")
		benches  = flag.String("benches", "", "comma-separated benchmark list (Table 1 and sync-stress names); overrides -bench")
		threads  = flag.String("threads", "1,2,4,8,16", "comma-separated thread counts")
		geoList  = flag.String("geos", "", "comma-separated machine geometries (CORESxCONTEXTS, e.g. 1x2,2x2); replaces the thread axis")
		policies = flag.String("policies", "", "comma-separated seating policies, or `all`; compares them on server mixes (-mixes) per geometry")
		mixes    = flag.String("mixes", "32,64,128", "with -policies: comma-separated server-mix sizes in total software threads")
	)
	cf := cli.Register("sweep", flag.CommandLine, cli.Options{Jobs: true})
	flag.Parse()
	c := cf.MustFinish()

	if *policies != "" {
		policySweep(c, *policies, *mixes, *geoList)
		return
	}
	if *geoList != "" {
		geometrySweep(c, *name, *benches, *geoList)
		return
	}

	var counts []int
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			c.Usagef("bad thread count %q", part)
		}
		counts = append(counts, n)
	}

	targets := bench.Multithreaded()
	if *benches != "" {
		targets = resolveBenches(c, *benches)
	} else if *name != "" {
		b, ok := bench.ByName(*name)
		if !ok || !b.Multithreaded {
			c.Usagef("%q is not a multithreaded benchmark", *name)
		}
		targets = []*bench.Benchmark{b}
	}
	var names []string
	for _, b := range targets {
		names = append(names, b.Name)
	}

	j, err := c.OpenJournal(fmt.Sprintf("sweep scale=%v benches=%s threads=%s",
		c.Scale, strings.Join(names, ","), *threads))
	if err != nil {
		c.Fatal(err)
	}
	cfg := harness.DefaultConfig()
	cfg.Scale = c.Scale
	cfg.Jobs = c.Jobs
	cfg.Obs = c.Obs
	cfg.Policy = c.Policy
	cfg.Inject = c.Inject
	cfg.Journal = j
	cfg.Plan = c.Plan
	cfg.SchedPolicy = c.SchedPolicy
	cfg.SchedParams = c.SchedParams()
	cells, err := harness.RunSweep(cfg, targets, counts)
	if err != nil {
		c.Fatal(err)
	}
	if err := j.Close(); err != nil {
		c.Fatal(err)
	}
	if err := c.WriteObs(); err != nil {
		c.Fatal(err)
	}

	var failed []harness.Failure
	fmt.Printf("%-12s %8s %8s %10s %10s %8s %10s %12s\n",
		"benchmark", "threads", "IPC", "L1D/1k", "OS %", "DT %", "lockCont", "fenceStall")
	for _, cell := range cells {
		if cell.Failed != "" {
			fmt.Printf("%-12s %8d FAILED(%s)\n", cell.Benchmark, cell.Threads, cell.Failed)
			failed = append(failed, harness.Failure{
				Cell:   fmt.Sprintf("%s t=%d", cell.Benchmark, cell.Threads),
				Reason: cell.Failed,
			})
			continue
		}
		f := &cell.Counters
		fmt.Printf("%-12s %8d %8.3f %10.2f %9.1f%% %7.1f%% %10d %12d\n",
			cell.Benchmark, cell.Threads, f.IPC(), f.PerKiloInstr(counters.L1DMisses),
			f.OSCyclePercent(), f.DTModePercent(),
			f.Get(counters.LockContended), f.Get(counters.FenceStallCycles))
	}
	c.ExitFailures(failed)
}

// resolveBenches parses a comma-separated benchmark list, reaching both
// the Table 1 suite and the synchronization-stress family.
func resolveBenches(c *cli.Common, list string) []*bench.Benchmark {
	var out []*bench.Benchmark
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		b, ok := bench.ByName(part)
		if !ok {
			c.Usagef("unknown benchmark %q", part)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		c.Usagef("-benches is empty")
	}
	return out
}

// policySweep runs the seating-policy axis: each server mix under each
// policy on each geometry, rendered as the policy comparison table.
func policySweep(c *cli.Common, policyList, mixList, geoList string) {
	var pols []string
	if policyList == "all" {
		pols = simos.PolicyNames()
	} else {
		for _, p := range strings.Split(policyList, ",") {
			p = strings.TrimSpace(p)
			if _, err := simos.NewPolicy(p); err != nil || p == "" {
				c.Usagef("bad policy %q (want one of %s, or all)", p, strings.Join(simos.PolicyNames(), "|"))
			}
			pols = append(pols, p)
		}
	}
	if geoList == "" {
		geoList = "1x2,2x2,4x4"
	}
	geos, err := cli.ParseGeometries(geoList)
	if err != nil {
		c.Usagef("%v", err)
	}
	var ms []harness.Mix
	for _, part := range strings.Split(mixList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			c.Usagef("bad mix size %q", part)
		}
		ms = append(ms, harness.ServerMix(n))
	}

	j, err := c.OpenJournal(fmt.Sprintf("sweep scale=%v policies=%s mixes=%s geos=%s",
		c.Scale, strings.Join(pols, ","), mixList, geoList))
	if err != nil {
		c.Fatal(err)
	}
	cfg := harness.DefaultConfig()
	cfg.Scale = c.Scale
	cfg.Jobs = c.Jobs
	cfg.Progress = c.Progress()
	cfg.Obs = c.Obs
	cfg.Policy = c.Policy
	cfg.Inject = c.Inject
	cfg.Journal = j
	cfg.Plan = c.Plan
	cfg.SchedParams = c.SchedParams()
	cells, err := harness.RunPolicySweep(cfg, pols, ms, geos)
	if err != nil {
		c.Fatal(err)
	}
	if err := j.Close(); err != nil {
		c.Fatal(err)
	}
	if err := c.WriteObs(); err != nil {
		c.Fatal(err)
	}

	fmt.Print(harness.RenderPolicySweep(cells))
	var failed []harness.Failure
	for _, cell := range cells {
		if cell.Failed != "" {
			failed = append(failed, harness.Failure{
				Cell:   fmt.Sprintf("%s policy=%s geo=%v", cell.Mix, cell.Policy, cell.Geometry),
				Reason: cell.Failed,
			})
		}
	}
	c.ExitFailures(failed)
}

// geometrySweep runs the machine-shape axis: each target benchmark on
// each -geos geometry.
func geometrySweep(c *cli.Common, name, benches, geoList string) {
	geos, err := cli.ParseGeometries(geoList)
	if err != nil {
		c.Usagef("%v", err)
	}
	targets := bench.All()
	if benches != "" {
		targets = resolveBenches(c, benches)
	} else if name != "" {
		b, ok := bench.ByName(name)
		if !ok {
			c.Usagef("unknown benchmark %q", name)
		}
		targets = []*bench.Benchmark{b}
	}
	var names []string
	for _, b := range targets {
		names = append(names, b.Name)
	}

	j, err := c.OpenJournal(fmt.Sprintf("sweep scale=%v benches=%s geos=%s",
		c.Scale, strings.Join(names, ","), geoList))
	if err != nil {
		c.Fatal(err)
	}
	cfg := harness.DefaultConfig()
	cfg.Scale = c.Scale
	cfg.Jobs = c.Jobs
	cfg.Obs = c.Obs
	cfg.Policy = c.Policy
	cfg.Inject = c.Inject
	cfg.Journal = j
	cfg.Plan = c.Plan
	cfg.SchedPolicy = c.SchedPolicy
	cfg.SchedParams = c.SchedParams()
	cells, err := harness.RunGeometrySweep(cfg, targets, geos)
	if err != nil {
		c.Fatal(err)
	}
	if err := j.Close(); err != nil {
		c.Fatal(err)
	}
	if err := c.WriteObs(); err != nil {
		c.Fatal(err)
	}

	var failed []harness.Failure
	fmt.Printf("%-12s %8s %8s %8s %10s %10s %8s\n", "benchmark", "geo", "threads", "IPC", "L1D/1k", "OS %", "DT %")
	for _, cell := range cells {
		if cell.Failed != "" {
			fmt.Printf("%-12s %8v FAILED(%s)\n", cell.Benchmark, cell.Geometry, cell.Failed)
			failed = append(failed, harness.Failure{
				Cell:   fmt.Sprintf("%s geo=%v", cell.Benchmark, cell.Geometry),
				Reason: cell.Failed,
			})
			continue
		}
		f := &cell.Counters
		fmt.Printf("%-12s %8v %8d %8.3f %10.2f %9.1f%% %7.1f%%\n",
			cell.Benchmark, cell.Geometry, cell.Threads, f.IPC(), f.PerKiloInstr(counters.L1DMisses),
			f.OSCyclePercent(), f.DTModePercent())
	}
	c.ExitFailures(failed)
}

// Command report regenerates the paper's tables and figures on the
// simulated machine. By default it produces everything; individual
// figures can be selected with flags.
//
// Independent runs within each experiment fan out across -j worker
// threads (default: all CPUs); every table is byte-identical at any -j.
//
//	report                  # all tables and figures
//	report -table2 -fig1    # only the selected items
//	report -scale small     # larger inputs (slower, closer to the paper)
//	report -j 1             # serial execution
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"javasmt/internal/bench"
	"javasmt/internal/check"
	"javasmt/internal/harness"
	"javasmt/internal/sched"
)

func main() {
	var (
		scaleStr = flag.String("scale", "tiny", "input scale: tiny|small|medium")
		runs     = flag.Int("runs", 6, "averaged runs per program in pairing experiments (paper: 12)")
		jobs     = flag.Int("j", sched.DefaultWorkers(), "concurrent experiments (1 = serial)")
		quiet    = flag.Bool("q", false, "suppress progress output")
		checks   = flag.Bool("checks", check.Enabled, "enable runtime invariant probes (needs a -tags checks build)")
	)
	sel := map[string]*bool{}
	for _, name := range []string{"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"} {
		sel[name] = flag.Bool(name, false, "render "+name)
	}
	flag.Parse()
	if err := check.SetOn(*checks); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(2)
	}

	scale := bench.Tiny
	switch strings.ToLower(*scaleStr) {
	case "tiny":
	case "small":
		scale = bench.Small
	case "medium":
		scale = bench.Medium
	default:
		fmt.Fprintf(os.Stderr, "report: unknown scale %q\n", *scaleStr)
		os.Exit(2)
	}

	all := true
	for _, v := range sel {
		if *v {
			all = false
		}
	}
	want := func(name string) bool { return all || *sel[name] }
	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "... %s\n", msg)
		}
	}

	if want("table1") {
		fmt.Println(harness.Table1())
	}

	needChar := want("table2") || want("fig1") || want("fig2") || want("fig3") ||
		want("fig4") || want("fig5") || want("fig6") || want("fig7")
	if needChar {
		c, err := harness.RunCharacterization(scale, *jobs, progress)
		if err != nil {
			fatal(err)
		}
		if want("table2") {
			fmt.Println(c.Table2())
		}
		if want("fig1") {
			fmt.Println(c.Fig1())
		}
		if want("fig2") {
			fmt.Println(c.Fig2())
		}
		if want("fig3") {
			fmt.Println(c.Fig3())
		}
		if want("fig4") {
			fmt.Println(c.Fig4())
		}
		if want("fig5") {
			fmt.Println(c.Fig5())
		}
		if want("fig6") {
			fmt.Println(c.Fig6())
		}
		if want("fig7") {
			fmt.Println(c.Fig7())
		}
	}

	if want("fig8") || want("fig9") || want("fig11") {
		opts := harness.DefaultPairOptions()
		opts.Scale = scale
		opts.Runs = *runs
		opts.Jobs = *jobs
		p, err := harness.RunPairings(opts, progress)
		if err != nil {
			fatal(err)
		}
		if want("fig8") {
			fmt.Println(p.Fig8())
		}
		if want("fig9") {
			fmt.Println(p.Fig9())
		}
		if want("fig11") {
			fmt.Println(p.Fig11())
		}
	}

	if want("fig10") {
		rows, err := harness.RunFig10(scale, *jobs, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(harness.RenderFig10(rows))
	}

	if want("fig12") {
		rows, err := harness.RunFig12(scale, []int{1, 2, 4, 8, 16}, *jobs, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(harness.RenderFig12(rows))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}

// Command report regenerates the paper's tables and figures on the
// simulated machine. By default it produces everything; individual
// figures can be selected with flags.
//
// Independent runs within each experiment fan out across -j worker
// threads (default: all CPUs); every table is byte-identical at any -j.
//
// Campaigns run under the resilience block: cells that panic, time out
// (-deadline) or exhaust -cycle-budget render as FAILED entries in an
// otherwise complete report, and the exit status is nonzero so scripts
// notice; -journal/-resume checkpoint long report runs.
//
//	report                  # all tables and figures
//	report -table2 -fig1    # only the selected items
//	report -scale small     # larger inputs (slower, closer to the paper)
//	report -j 1             # serial execution
//	report -fig10 -metrics m.json   # plus sampled time-series
//	report -journal /tmp/rep -deadline 10m  # resumable, bounded cells
package main

import (
	"flag"
	"fmt"
	"strings"

	"javasmt/internal/cli"
	"javasmt/internal/harness"
)

func main() {
	runs := flag.Int("runs", 6, "averaged runs per program in pairing experiments (paper: 12)")
	sel := map[string]*bool{}
	for _, name := range []string{"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"} {
		sel[name] = flag.Bool(name, false, "render "+name)
	}
	cf := cli.Register("report", flag.CommandLine, cli.Options{Jobs: true, Quiet: true})
	flag.Parse()
	c := cf.MustFinish()

	all := true
	for _, v := range sel {
		if *v {
			all = false
		}
	}
	want := func(name string) bool { return all || *sel[name] }
	var selected []string
	for _, name := range []string{"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"} {
		if want(name) {
			selected = append(selected, name)
		}
	}

	j, err := c.OpenJournal(fmt.Sprintf("report scale=%v runs=%d items=%s",
		c.Scale, *runs, strings.Join(selected, ",")))
	if err != nil {
		c.Fatal(err)
	}
	cfg := harness.DefaultConfig()
	cfg.Scale = c.Scale
	cfg.Jobs = c.Jobs
	cfg.Runs = *runs
	cfg.Progress = c.Progress()
	cfg.Obs = c.Obs
	cfg.Policy = c.Policy
	cfg.Inject = c.Inject
	cfg.Journal = j
	cfg.Plan = c.Plan
	cfg.SchedPolicy = c.SchedPolicy
	cfg.SchedParams = c.SchedParams()
	var failed []harness.Failure

	if want("table1") {
		fmt.Println(harness.Table1())
	}

	needChar := want("table2") || want("fig1") || want("fig2") || want("fig3") ||
		want("fig4") || want("fig5") || want("fig6") || want("fig7")
	if needChar {
		ch, err := harness.RunCharacterization(cfg)
		if err != nil {
			c.Fatal(err)
		}
		failed = append(failed, ch.Failed...)
		if want("table2") {
			fmt.Println(ch.Table2())
		}
		if want("fig1") {
			fmt.Println(ch.Fig1())
		}
		if want("fig2") {
			fmt.Println(ch.Fig2())
		}
		if want("fig3") {
			fmt.Println(ch.Fig3())
		}
		if want("fig4") {
			fmt.Println(ch.Fig4())
		}
		if want("fig5") {
			fmt.Println(ch.Fig5())
		}
		if want("fig6") {
			fmt.Println(ch.Fig6())
		}
		if want("fig7") {
			fmt.Println(ch.Fig7())
		}
	}

	if want("fig8") || want("fig9") || want("fig11") {
		p, err := harness.RunPairings(cfg)
		if err != nil {
			c.Fatal(err)
		}
		failed = append(failed, p.Failed...)
		if want("fig8") {
			fmt.Println(p.Fig8())
		}
		if want("fig9") {
			fmt.Println(p.Fig9())
		}
		if want("fig11") {
			fmt.Println(p.Fig11())
		}
	}

	if want("fig10") {
		rows, err := harness.RunFig10(cfg)
		if err != nil {
			c.Fatal(err)
		}
		for _, r := range rows {
			if r.Failed != "" {
				failed = append(failed, harness.Failure{Cell: "fig10 " + r.Benchmark, Reason: r.Failed})
			}
		}
		fmt.Println(harness.RenderFig10(rows))
	}

	if want("fig12") {
		rows, err := harness.RunFig12(cfg, []int{1, 2, 4, 8, 16})
		if err != nil {
			c.Fatal(err)
		}
		for _, r := range rows {
			if r.Failed != "" {
				failed = append(failed, harness.Failure{
					Cell: fmt.Sprintf("fig12 %s t=%d", r.Benchmark, r.Threads), Reason: r.Failed})
			}
		}
		fmt.Println(harness.RenderFig12(rows))
	}

	if err := j.Close(); err != nil {
		c.Fatal(err)
	}
	if err := c.WriteObs(); err != nil {
		c.Fatal(err)
	}
	c.ExitFailures(failed)
}

// Command pairings runs multiprogramming experiments: a single pair with
// detailed output, or the full 9x9 cross product (Figures 8, 9, 11).
// The cross product fans out across -j worker threads (default: all
// CPUs); results are byte-identical at every -j.
//
//	pairings -a jack -b mpegaudio
//	pairings -all -runs 6 -j 4
package main

import (
	"flag"
	"fmt"
	"os"

	"javasmt/internal/bench"
	"javasmt/internal/check"
	"javasmt/internal/counters"
	"javasmt/internal/harness"
	"javasmt/internal/sched"
)

func main() {
	var (
		aName  = flag.String("a", "compress", "first benchmark")
		bName  = flag.String("b", "mpegaudio", "second benchmark")
		all    = flag.Bool("all", false, "run the full 9x9 cross product")
		runs   = flag.Int("runs", 6, "averaged runs per program (paper: 12)")
		small  = flag.Bool("small", false, "use the small scale instead of tiny")
		jobs   = flag.Int("j", sched.DefaultWorkers(), "concurrent experiments (1 = serial)")
		quiet  = flag.Bool("q", false, "suppress progress output")
		checks = flag.Bool("checks", check.Enabled, "enable runtime invariant probes (needs a -tags checks build)")
	)
	flag.Parse()
	if err := check.SetOn(*checks); err != nil {
		fmt.Fprintln(os.Stderr, "pairings:", err)
		os.Exit(2)
	}

	opts := harness.DefaultPairOptions()
	opts.Runs = *runs
	opts.Jobs = *jobs
	if *small {
		opts.Scale = bench.Small
	}
	// Workers interleave at line granularity; every message is prefixed
	// with its pair name so the stream stays readable at any -j.
	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "... %s\n", msg)
		}
	}

	if *all {
		p, err := harness.RunPairings(opts, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(p.Fig8())
		fmt.Println(p.Fig9())
		fmt.Println(p.Fig11())
		return
	}

	a, ok := bench.ByName(*aName)
	if !ok {
		fatal(fmt.Errorf("unknown benchmark %q", *aName))
	}
	b, ok := bench.ByName(*bName)
	if !ok {
		fatal(fmt.Errorf("unknown benchmark %q", *bName))
	}
	res, err := harness.RunPair(a, b, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pair            %s + %s\n", res.A, res.B)
	fmt.Printf("solo cycles     %s=%.0f  %s=%.0f\n", res.A, res.SoloA, res.B, res.SoloB)
	fmt.Printf("paired cycles   %s=%.0f (%d runs)  %s=%.0f (%d runs)\n",
		res.A, res.TimeA, res.RunsA, res.B, res.TimeB, res.RunsB)
	fmt.Printf("speedups        %s=%.3f  %s=%.3f\n", res.A, res.SpeedupA(), res.B, res.SpeedupB())
	fmt.Printf("combined C_AB   %.3f  (1 = perfect time sharing, 2 = perfect SMP)\n", res.CombinedSpeedup())
	f := &res.Counters
	fmt.Printf("interval: TC/1k %.2f  L1D/1k %.2f  L2/1k %.2f  BTB %.4f  DT %.1f%%\n",
		f.PerKiloInstr(counters.TCMisses), f.PerKiloInstr(counters.L1DMisses),
		f.PerKiloInstr(counters.L2Misses), f.Rate(counters.BTBMisses, counters.Branches),
		f.DTModePercent())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pairings:", err)
	os.Exit(1)
}

// Command pairings runs multiprogramming experiments: a single pair with
// detailed output, or the full 9x9 cross product (Figures 8, 9, 11).
// The cross product fans out across -j worker threads (default: all
// CPUs); results are byte-identical at every -j.
//
//	pairings -a jack -b mpegaudio
//	pairings -all -runs 6 -j 4
//	pairings -all -metrics m.json -trace t.json
package main

import (
	"flag"
	"fmt"

	"javasmt/internal/bench"
	"javasmt/internal/cli"
	"javasmt/internal/counters"
	"javasmt/internal/harness"
)

func main() {
	var (
		aName = flag.String("a", "compress", "first benchmark")
		bName = flag.String("b", "mpegaudio", "second benchmark")
		all   = flag.Bool("all", false, "run the full 9x9 cross product")
		runs  = flag.Int("runs", 6, "averaged runs per program (paper: 12)")
	)
	cf := cli.Register("pairings", flag.CommandLine, cli.Options{Jobs: true, Quiet: true})
	flag.Parse()
	c := cf.MustFinish()

	cfg := harness.DefaultConfig()
	cfg.Scale = c.Scale
	cfg.Jobs = c.Jobs
	cfg.Runs = *runs
	cfg.Progress = c.Progress()
	cfg.Obs = c.Obs

	if *all {
		p, err := harness.RunPairings(cfg)
		if err != nil {
			c.Fatal(err)
		}
		if err := c.WriteObs(); err != nil {
			c.Fatal(err)
		}
		fmt.Println(p.Fig8())
		fmt.Println(p.Fig9())
		fmt.Println(p.Fig11())
		return
	}

	a, ok := bench.ByName(*aName)
	if !ok {
		c.Fatal(fmt.Errorf("unknown benchmark %q", *aName))
	}
	b, ok := bench.ByName(*bName)
	if !ok {
		c.Fatal(fmt.Errorf("unknown benchmark %q", *bName))
	}
	opts := harness.DefaultPairOptions()
	opts.Scale = cfg.Scale
	opts.Runs = cfg.Runs
	opts.Obs = c.Obs
	res, err := harness.RunPair(a, b, opts)
	if err != nil {
		c.Fatal(err)
	}
	if err := c.WriteObs(); err != nil {
		c.Fatal(err)
	}
	fmt.Printf("pair            %s + %s\n", res.A, res.B)
	fmt.Printf("solo cycles     %s=%.0f  %s=%.0f\n", res.A, res.SoloA, res.B, res.SoloB)
	fmt.Printf("paired cycles   %s=%.0f (%d runs)  %s=%.0f (%d runs)\n",
		res.A, res.TimeA, res.RunsA, res.B, res.TimeB, res.RunsB)
	fmt.Printf("speedups        %s=%.3f  %s=%.3f\n", res.A, res.SpeedupA(), res.B, res.SpeedupB())
	fmt.Printf("combined C_AB   %.3f  (1 = perfect time sharing, 2 = perfect SMP)\n", res.CombinedSpeedup())
	f := &res.Counters
	fmt.Printf("interval: TC/1k %.2f  L1D/1k %.2f  L2/1k %.2f  BTB %.4f  DT %.1f%%\n",
		f.PerKiloInstr(counters.TCMisses), f.PerKiloInstr(counters.L1DMisses),
		f.PerKiloInstr(counters.L2Misses), f.Rate(counters.BTBMisses, counters.Branches),
		f.DTModePercent())
}

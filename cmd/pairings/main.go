// Command pairings runs multiprogramming experiments: a single pair with
// detailed output, or the full 9x9 cross product (Figures 8, 9, 11).
// The cross product fans out across -j worker threads (default: all
// CPUs); results are byte-identical at every -j.
//
// Long campaigns run under the resilience block: -deadline/-cycle-budget
// bound each cell, -retries absorbs transient failures, and
// -journal/-resume checkpoint the campaign so an interrupted run picks
// up where it left off. Failed cells degrade to FAILED report entries
// and a nonzero exit instead of aborting the campaign.
//
//	pairings -a jack -b mpegaudio
//	pairings -all -runs 6 -j 4
//	pairings -all -benches compress,mpegaudio,db   # reduced cross product
//	pairings -all -journal /tmp/camp               # ... interrupted ...
//	pairings -all -journal /tmp/camp -resume
package main

import (
	"flag"
	"fmt"
	"strings"

	"javasmt/internal/bench"
	"javasmt/internal/cli"
	"javasmt/internal/counters"
	"javasmt/internal/harness"
)

func main() {
	var (
		aName   = flag.String("a", "compress", "first benchmark")
		bName   = flag.String("b", "mpegaudio", "second benchmark")
		all     = flag.Bool("all", false, "run the full 9x9 cross product")
		benches = flag.String("benches", "", "comma-separated benchmarks restricting the -all cross product")
		runs    = flag.Int("runs", 6, "averaged runs per program (paper: 12)")
	)
	cf := cli.Register("pairings", flag.CommandLine, cli.Options{Jobs: true, Quiet: true})
	flag.Parse()
	c := cf.MustFinish()

	cfg := harness.DefaultConfig()
	cfg.Scale = c.Scale
	cfg.Jobs = c.Jobs
	cfg.Runs = *runs
	cfg.Progress = c.Progress()
	cfg.Obs = c.Obs
	cfg.Policy = c.Policy
	cfg.Inject = c.Inject
	cfg.Plan = c.Plan
	cfg.SchedPolicy = c.SchedPolicy
	cfg.SchedParams = c.SchedParams()

	if *all {
		targets := bench.SingleThreaded()
		if *benches != "" {
			targets = nil
			for _, n := range strings.Split(*benches, ",") {
				b, ok := bench.ByName(strings.TrimSpace(n))
				if !ok {
					c.Usagef("unknown benchmark %q in -benches", n)
				}
				targets = append(targets, b)
			}
		}
		var names []string
		for _, b := range targets {
			names = append(names, b.Name)
		}
		j, err := c.OpenJournal(fmt.Sprintf("pairings scale=%v runs=%d benches=%s",
			c.Scale, *runs, strings.Join(names, ",")))
		if err != nil {
			c.Fatal(err)
		}
		cfg.Journal = j
		p, err := harness.RunPairingsOf(targets, cfg)
		if err != nil {
			c.Fatal(err)
		}
		if err := j.Close(); err != nil {
			c.Fatal(err)
		}
		if err := c.WriteObs(); err != nil {
			c.Fatal(err)
		}
		fmt.Println(p.Fig8())
		fmt.Println(p.Fig9())
		fmt.Println(p.Fig11())
		c.ExitFailures(p.Failed)
		return
	}

	a, ok := bench.ByName(*aName)
	if !ok {
		c.Fatal(fmt.Errorf("unknown benchmark %q", *aName))
	}
	b, ok := bench.ByName(*bName)
	if !ok {
		c.Fatal(fmt.Errorf("unknown benchmark %q", *bName))
	}
	j, err := c.OpenJournal(fmt.Sprintf("pair scale=%v runs=%d", c.Scale, *runs))
	if err != nil {
		c.Fatal(err)
	}
	cfg.Journal = j
	res, fail, err := harness.RunPairCell(a, b, cfg)
	if err != nil {
		c.Fatal(err)
	}
	if err := j.Close(); err != nil {
		c.Fatal(err)
	}
	if err := c.WriteObs(); err != nil {
		c.Fatal(err)
	}
	if fail != nil {
		c.ExitFailures([]harness.Failure{{Cell: fail.Cell, Kind: string(fail.Kind), Reason: fail.Reason()}})
	}
	f := &res.Counters
	fmt.Printf("pair            %s + %s\n", res.A, res.B)
	fmt.Printf("solo cycles     %s=%.0f  %s=%.0f\n", res.A, res.SoloA, res.B, res.SoloB)
	fmt.Printf("paired cycles   %s=%.0f (%d runs)  %s=%.0f (%d runs)\n",
		res.A, res.TimeA, res.RunsA, res.B, res.TimeB, res.RunsB)
	fmt.Printf("speedups        %s=%.3f  %s=%.3f\n", res.A, res.SpeedupA(), res.B, res.SpeedupB())
	fmt.Printf("combined C_AB   %.3f  (1 = perfect time sharing, 2 = perfect SMP)\n", res.CombinedSpeedup())
	fmt.Printf("interval: TC/1k %.2f  L1D/1k %.2f  L2/1k %.2f  BTB %.4f  DT %.1f%%\n",
		f.PerKiloInstr(counters.TCMisses), f.PerKiloInstr(counters.L1DMisses),
		f.PerKiloInstr(counters.L2Misses), f.Rate(counters.BTBMisses, counters.Branches),
		f.DTModePercent())
}

// Command javasmt runs one Java benchmark on the simulated Hyper-Threading
// processor and prints its performance counters — the equivalent of one
// Brink & Abyss measurement session from the paper.
//
// The run is guarded by the campaign resilience block: -deadline and
// -cycle-budget bound it, -retries absorbs transient failures, and a
// panic inside the simulator reports a structured failure instead of a
// crash.
//
// Usage:
//
//	javasmt -bench compress -ht
//	javasmt -bench MolDyn -threads 8 -scale small -ht
//	javasmt -bench jack -ht -partition dynamic
//	javasmt -bench compress -metrics m.json -trace t.json -sample 50000
//	javasmt -bench db -ht -deadline 10m -cycle-budget 5000000000
package main

import (
	"flag"
	"fmt"

	"javasmt/internal/bench"
	"javasmt/internal/cli"
	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/harness"
)

func main() {
	var (
		name      = flag.String("bench", "compress", "benchmark name (see -list)")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		threads   = flag.Int("threads", 1, "Java threads for multithreaded benchmarks")
		ht        = flag.Bool("ht", false, "enable Hyper-Threading")
		partition = flag.String("partition", "static", "resource partition: static|dynamic")
		tcShared  = flag.Bool("tc-shared-tags", false, "ablation: share trace-cache lines across contexts")
		noVerify  = flag.Bool("no-verify", false, "skip result verification against the Go mirror")
	)
	cf := cli.Register("javasmt", flag.CommandLine, cli.Options{})
	flag.Parse()
	c := cf.MustFinish()

	if *list {
		fmt.Print(harness.Table1())
		return
	}
	b, ok := bench.ByName(*name)
	if !ok {
		c.Usagef("unknown benchmark %q; use -list", *name)
	}
	opts := harness.Options{
		HT:           *ht,
		Geometry:     c.Geometry,
		Threads:      *threads,
		Scale:        c.Scale,
		Verify:       !*noVerify,
		TCSharedTags: *tcShared,
		Obs:          c.Obs,
		Plan:         c.Plan,
		SchedPolicy:  c.SchedPolicy,
		SchedParams:  c.SchedParams(),
	}
	if *partition == "dynamic" {
		opts.Partition = core.DynamicPartition
	} else if *partition != "static" {
		c.Usagef("unknown partition %q", *partition)
	}

	j, err := c.OpenJournal(fmt.Sprintf("javasmt bench=%s threads=%d scale=%v ht=%v partition=%s",
		b.Name, *threads, c.Scale, *ht, *partition))
	if err != nil {
		c.Fatal(err)
	}
	cfg := harness.DefaultConfig()
	cfg.Scale = c.Scale
	cfg.Obs = c.Obs
	cfg.Policy = c.Policy
	cfg.Inject = c.Inject
	cfg.Journal = j
	cfg.Plan = c.Plan
	cfg.SchedPolicy = c.SchedPolicy
	cfg.SchedParams = c.SchedParams()
	res, fail, err := harness.RunResilient(b, opts, cfg)
	if err != nil {
		c.Fatal(err)
	}
	if err := j.Close(); err != nil {
		c.Fatal(err)
	}
	if err := c.WriteObs(); err != nil {
		c.Fatal(err)
	}
	if fail != nil {
		c.ExitFailures([]harness.Failure{{Cell: fail.Cell, Kind: string(fail.Kind), Reason: fail.Reason()}})
	}

	f := &res.Counters
	machine := fmt.Sprintf("ht=%v", *ht)
	if (c.Geometry != core.Geometry{}) {
		machine = fmt.Sprintf("geo=%v", c.Geometry)
	}
	fmt.Printf("benchmark    %s (threads=%d scale=%v %s partition=%s)\n",
		b.Name, *threads, c.Scale, machine, *partition)
	fmt.Printf("cycles       %d\n", res.Cycles)
	fmt.Printf("uops         %d\n", f.Get(counters.Instructions))
	fmt.Printf("IPC          %.3f   CPI %.3f\n", f.IPC(), f.CPI())
	fmt.Printf("OS cycles    %.2f%%  DT mode %.2f%%  GCs %d\n",
		f.OSCyclePercent(), f.DTModePercent(), res.GCCount)
	p := f.RetirementProfile()
	fmt.Printf("retire 0/1/2/3  %.3f / %.3f / %.3f / %.3f\n", p[0], p[1], p[2], p[3])
	fmt.Printf("TC miss/1k   %.3f\n", f.PerKiloInstr(counters.TCMisses))
	fmt.Printf("L1D miss/1k  %.3f\n", f.PerKiloInstr(counters.L1DMisses))
	fmt.Printf("L2 miss/1k   %.3f\n", f.PerKiloInstr(counters.L2Misses))
	fmt.Printf("ITLB miss/1k %.3f\n", f.PerKiloInstr(counters.ITLBMisses))
	fmt.Printf("BTB missrate %.4f\n", f.Rate(counters.BTBMisses, counters.Branches))
	fmt.Println()
	fmt.Println(f.Report(nil))
}

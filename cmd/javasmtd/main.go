// Command javasmtd is the campaign server: a long-running daemon that
// accepts experiment-campaign specs over HTTP/JSON, fans their cells
// across a bounded worker pool, journals every outcome to a per-job
// ledger, and streams results as they complete. Kill it — SIGTERM,
// SIGKILL, power loss with -journal-sync — and the next start resumes
// every unfinished job from its ledger, re-simulating only cells that
// never committed.
//
// Usage:
//
//	javasmtd -data DIR [-addr :8347] [-workers N] [-max-queue N]
//	         [-max-jobs N] [-journal-sync] [-q]
//
// The bound address is written to DIR/addr once listening (so scripts
// can use -addr :0 and discover the port), and removed on clean exit.
// See DESIGN.md §13 and the README's "Serving campaigns" walkthrough.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"javasmt/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address (use :0 for an ephemeral port)")
	data := flag.String("data", "", "state directory: job specs, ledgers, terminal markers (required)")
	workers := flag.Int("workers", 0, "concurrent cell simulations (0 = one per CPU)")
	maxQueue := flag.Int("max-queue", 4096, "max queued cells across all jobs before submissions get 429 (0 = unbounded)")
	maxJobs := flag.Int("max-jobs", 64, "max active jobs before submissions get 429 (0 = unbounded)")
	journalSync := flag.Bool("journal-sync", false, "fsync job ledgers after every cell (survives power loss, not just crashes)")
	quiet := flag.Bool("q", false, "suppress lifecycle logging")
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "javasmtd: -data is required")
		os.Exit(2)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "javasmtd: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	srv, err := service.New(service.Config{
		DataDir:        *data,
		Workers:        *workers,
		MaxQueuedCells: *maxQueue,
		MaxJobs:        *maxJobs,
		JournalSync:    *journalSync,
		Logf:           logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "javasmtd: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "javasmtd: %v\n", err)
		os.Exit(1)
	}
	addrFile := filepath.Join(*data, "addr")
	if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "javasmtd: %v\n", err)
		os.Exit(1)
	}
	if logf != nil {
		logf("listening on %s (data %s)", ln.Addr(), *data)
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		if logf != nil {
			logf("%v: draining (in-flight cells commit; queued cells resume next start)", sig)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		httpSrv.Shutdown(ctx)
		cancel()
		srv.Drain()
		os.Remove(addrFile)
	case err := <-done:
		fmt.Fprintf(os.Stderr, "javasmtd: %v\n", err)
		os.Remove(addrFile)
		os.Exit(1)
	}
}
